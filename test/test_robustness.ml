(* Edge cases, failure injection and property tests across module
   boundaries: the inputs a downstream user will eventually feed us. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- degenerate circuits through the full pipeline ---------- *)

let test_empty_circuit () =
  let c = Circuit.empty 3 in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      Topology.Devices.montreal c
  in
  checki "no gates" 0 r.cx_total;
  checki "no swaps" 0 r.n_swaps

let test_single_qubit_only_circuit () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.T; qubits = [ 1 ] };
        { gate = Gate.RZ 0.4; qubits = [ 2 ] };
      ]
  in
  let r = Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router
      Topology.Devices.montreal c in
  checki "no swaps for 1q circuit" 0 r.n_swaps;
  checki "no cx" 0 r.cx_total

let test_circuit_exactly_fills_device () =
  let c = Qbench.Extras.ghz 5 in
  let coupling = Topology.Devices.linear 5 in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling c
  in
  check "routed validly at capacity" true (Qroute.Sabre.check_routed coupling r.circuit)

let test_circuit_too_big_raises () =
  let c = Qbench.Extras.ghz 6 in
  check "raises" true
    (try
       ignore
         (Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router
            (Topology.Devices.linear 5) c);
       false
     with Invalid_argument _ -> true)

let test_measures_survive_pipeline () =
  let c =
    Circuit.create 3
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 2 ] };
        { gate = Gate.Measure; qubits = [ 0 ] };
        { gate = Gate.Measure; qubits = [ 2 ] };
      ]
  in
  let r = Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router
      (Topology.Devices.linear 4) c in
  checki "measures kept" 2 (Circuit.gate_count r.circuit "measure")

(* ---------- engine parameter corners ---------- *)

let test_zero_lookahead () =
  let params = { Qroute.Engine.default_params with ext_size = 0 } in
  let c = Qbench.Generators.qft 8 in
  let coupling = Topology.Devices.linear 10 in
  let r = Qroute.Pipeline.transpile ~params ~router:Qroute.Pipeline.Sabre_router coupling c in
  check "routes without lookahead" true (Qroute.Sabre.check_routed coupling r.circuit)

let test_tiny_stall_limit_still_terminates () =
  let params = { Qroute.Engine.default_params with stall_limit = 1 } in
  let c = Qbench.Generators.qft 8 in
  let coupling = Topology.Devices.linear 10 in
  let r = Qroute.Pipeline.transpile ~params ~router:Qroute.Pipeline.Sabre_router coupling c in
  check "stall valve works" true (Qroute.Sabre.check_routed coupling r.circuit)

let test_single_iteration_layout () =
  let params = { Qroute.Engine.default_params with iterations = 1 } in
  let c = Qbench.Generators.vqe 8 in
  let coupling = Topology.Devices.montreal in
  let r =
    Qroute.Pipeline.transpile ~params
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling c
  in
  check "valid" true (Qroute.Sabre.check_routed coupling r.circuit)

(* ---------- trial-pool failure isolation ---------- *)

exception Injected of int

let test_failing_trials_are_isolated () =
  (* odd trials raise; the pool must record them and still return every
     even trial's result, without deadlocking or leaking a domain *)
  let r =
    Qroute.Trials.map ~workers:4 ~n:9 (fun k ->
        if k mod 2 = 1 then raise (Injected k) else k * 10)
  in
  Array.iteri
    (fun k outcome ->
      match (k mod 2, outcome) with
      | 0, Ok v -> checki "even trial survives" (k * 10) v
      | 1, Error (Injected j) -> checki "odd trial captured" k j
      | _ -> Alcotest.fail "wrong outcome shape")
    r

let test_failing_bonus_skips_trial () =
  (* a bonus function that blows up on one trial's stream: the best-of-N
     run skips that trial per the documented policy and wins with another *)
  let c = Qbench.Generators.qft 5 in
  let coupling = Topology.Devices.linear 6 in
  let dist = Qroute.Sabre.hop_distance coupling in
  let report =
    Qroute.Trials.run ~workers:2 ~n:4 ~base_seed:11
      ~measure:(fun (r : Qroute.Engine.result) ->
        (3 * r.n_swaps, List.length r.routed, r.n_swaps))
      (fun ~trial ~seed ->
        if trial = 2 then failwith "injected bonus failure";
        let params = { Qroute.Engine.default_params with seed } in
        let layout =
          Qroute.Engine.find_layout params coupling ~rng:(Qroute.Engine.layout_rng params)
            ~dist ~bonus:Qroute.Engine.zero_bonus (Qroute.Pipeline.lower_to_2q c)
        in
        Qroute.Engine.route_once params coupling ~rng:(Qroute.Engine.route_rng params) ~dist
          ~bonus:Qroute.Engine.zero_bonus (Qroute.Pipeline.lower_to_2q c) layout)
  in
  checki "all trials accounted for" 4 (List.length report.stats);
  let failed = List.filter (fun (s : Qroute.Trials.stat) -> s.error <> None) report.stats in
  checki "exactly the injected failure" 1 (List.length failed);
  checki "it was trial 2" 2 (List.hd failed).trial;
  check "winner is a surviving trial" true (report.best_stat.error = None)

let test_all_trials_failing_surfaces_one_error () =
  (* circuit wider than the device: every trial fails identically, and the
     multi-trial path raises the same clean error as the single-shot one *)
  let c = Qbench.Extras.ghz 6 in
  check "raises Invalid_argument" true
    (try
       ignore
         (Qroute.Pipeline.transpile ~trials:4 ~workers:2
            ~router:Qroute.Pipeline.Sabre_router (Topology.Devices.linear 5) c);
       false
     with Invalid_argument _ -> true)

(* ---------- noise extremes ---------- *)

let test_total_noise_destroys_signal () =
  (* with massive gate error every outcome is near-uniform: success of a
     deterministic circuit collapses towards 1/2^n *)
  let c =
    Circuit.create 3
      [
        { gate = Gate.X; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
      ]
  in
  (* build an adversarial model via remap of a trivial one is not possible;
     use calibration on a device and scale by brute force: many repetitions
     of noisy identity gates *)
  let cal = Topology.Calibration.generate (Topology.Devices.linear 3) in
  let model = Qsim.Noise.of_calibration cal in
  let deep =
    let b = Circuit.Builder.create 3 in
    List.iter
      (fun (i : Circuit.instr) -> Circuit.Builder.add_instr b i)
      (Circuit.instrs c);
    for _ = 1 to 120 do
      Circuit.Builder.add b Gate.CX [ 0; 1 ];
      Circuit.Builder.add b Gate.CX [ 0; 1 ]
    done;
    Circuit.Builder.circuit b
  in
  let rng = Rng.create 17 in
  let shallow_hits =
    Array.fold_left
      (fun acc o -> if o = 0b111 then acc + 1 else acc)
      0
      (Qsim.Noise.sample model c ~shots:800 rng)
  in
  let deep_hits =
    Array.fold_left
      (fun acc o -> if o = 0b111 then acc + 1 else acc)
      0
      (Qsim.Noise.sample model deep ~shots:800 rng)
  in
  check "noise accumulates with depth" true (deep_hits < shallow_hits)

let test_esp_measured_subset () =
  let cal = Topology.Calibration.generate (Topology.Devices.linear 3) in
  let model = Qsim.Noise.of_calibration cal in
  let c = Circuit.create 3 [ { gate = Gate.CX; qubits = [ 0; 1 ] } ] in
  let e_none = Qsim.Noise.esp model c ~measured:[] in
  let e_all = Qsim.Noise.esp model c ~measured:[ 0; 1; 2 ] in
  check "more measured wires, lower esp" true (e_all < e_none)

let test_noise_remap () =
  let cal = Topology.Calibration.generate (Topology.Devices.linear 4) in
  let model = Qsim.Noise.of_calibration cal in
  let remapped = Qsim.Noise.remap model (fun q -> q + 1) in
  Alcotest.(check (float 0.0)) "remapped readout" (Qsim.Noise.readout_error model 3)
    (Qsim.Noise.readout_error remapped 2);
  Alcotest.(check (float 0.0)) "remapped cx" (Qsim.Noise.gate_error model Gate.CX [ 1; 2 ])
    (Qsim.Noise.gate_error remapped Gate.CX [ 0; 1 ])

(* ---------- DAG edge cases ---------- *)

let test_dag_empty () =
  let d = Dag.of_circuit (Circuit.empty 2) in
  checki "no nodes" 0 (Dag.n_nodes d);
  let tr = Dag.Traversal.create d in
  check "immediately finished" true (Dag.Traversal.finished tr)

let test_dag_first_on_wire () =
  let c =
    Circuit.create 3
      [ { gate = Gate.H; qubits = [ 1 ] }; { gate = Gate.CX; qubits = [ 1; 2 ] } ]
  in
  let d = Dag.of_circuit c in
  check "wire 0 unused" true (Dag.first_on_wire d 0 = None);
  check "wire 1 starts at h" true (Dag.first_on_wire d 1 = Some 0);
  check "wire 2 starts at cx" true (Dag.first_on_wire d 2 = Some 1)

let test_traversal_rejects_non_ready () =
  let c =
    Circuit.create 2
      [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ]
  in
  let tr = Dag.Traversal.create (Dag.of_circuit c) in
  check "cx not ready" true
    (try
       Dag.Traversal.execute tr 1;
       false
     with Invalid_argument _ -> true)

(* ---------- QCheck properties across the stack ---------- *)

let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  let random_circuit seed =
    let rng = Rng.create seed in
    let n = 3 + Rng.int rng 2 in
    let b = Circuit.Builder.create n in
    let len = 5 + Rng.int rng 25 in
    for _ = 1 to len do
      match Rng.int rng 5 with
      | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
      | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
      | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
      | _ ->
          let a = Rng.int rng n in
          let c = (a + 1 + Rng.int rng (n - 1)) mod n in
          Circuit.Builder.add b Gate.CX [ a; c ]
    done;
    Circuit.Builder.circuit b
  in
  let prop_sabre_routed_equal =
    QCheck.Test.make ~name:"sabre routing preserves semantics" ~count:25
      (QCheck.make gen_seed) (fun seed ->
        let c = random_circuit seed in
        let coupling = Topology.Devices.linear (Circuit.n_qubits c + 1) in
        let params = { Qroute.Engine.default_params with seed } in
        let r = Qroute.Sabre.route ~params coupling c in
        Qsim.Equiv.routed_equal ~logical:c
          ~routed:(Qroute.Sabre.decompose_swaps r.circuit)
          ~final_layout:r.final_layout)
  in
  let prop_nassc_routed_equal =
    QCheck.Test.make ~name:"nassc routing preserves semantics" ~count:25
      (QCheck.make gen_seed) (fun seed ->
        let c = random_circuit seed in
        let coupling = Topology.Devices.ring (Circuit.n_qubits c + 2) in
        let params = { Qroute.Engine.default_params with seed } in
        let r = Qroute.Nassc.route ~params coupling c in
        Qsim.Equiv.routed_equal ~logical:c ~routed:r.circuit
          ~final_layout:r.final_layout)
  in
  let prop_pipeline_basis =
    QCheck.Test.make ~name:"pipeline always lands in hardware basis" ~count:15
      (QCheck.make gen_seed) (fun seed ->
        let c = random_circuit seed in
        let coupling = Topology.Devices.montreal in
        let params = { Qroute.Engine.default_params with seed } in
        let r =
          Qroute.Pipeline.transpile ~params
            ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling c
        in
        Qpasses.Basis.check r.circuit)
  in
  let prop_qasm_roundtrip =
    QCheck.Test.make ~name:"qasm emit/parse preserves unitary" ~count:20
      (QCheck.make gen_seed) (fun seed ->
        let c = random_circuit seed in
        let parsed = Qasm_parser.parse (Qasm.to_string c) in
        Qsim.Equiv.unitary_equal c parsed)
  in
  List.map QCheck_alcotest.to_alcotest
    [ prop_sabre_routed_equal; prop_nassc_routed_equal; prop_pipeline_basis; prop_qasm_roundtrip ]

let () =
  Alcotest.run "robustness"
    [
      ( "degenerate circuits",
        [
          Alcotest.test_case "empty" `Quick test_empty_circuit;
          Alcotest.test_case "1q only" `Quick test_single_qubit_only_circuit;
          Alcotest.test_case "fills device" `Quick test_circuit_exactly_fills_device;
          Alcotest.test_case "too big" `Quick test_circuit_too_big_raises;
          Alcotest.test_case "measures survive" `Quick test_measures_survive_pipeline;
        ] );
      ( "trial pool",
        [
          Alcotest.test_case "failures isolated" `Quick test_failing_trials_are_isolated;
          Alcotest.test_case "failing bonus skipped" `Quick test_failing_bonus_skips_trial;
          Alcotest.test_case "all failing surfaces error" `Quick
            test_all_trials_failing_surfaces_one_error;
        ] );
      ( "engine corners",
        [
          Alcotest.test_case "zero lookahead" `Quick test_zero_lookahead;
          Alcotest.test_case "tiny stall limit" `Quick test_tiny_stall_limit_still_terminates;
          Alcotest.test_case "single iteration" `Quick test_single_iteration_layout;
        ] );
      ( "noise extremes",
        [
          Alcotest.test_case "depth destroys signal" `Quick test_total_noise_destroys_signal;
          Alcotest.test_case "esp measured subset" `Quick test_esp_measured_subset;
          Alcotest.test_case "remap" `Quick test_noise_remap;
        ] );
      ( "dag corners",
        [
          Alcotest.test_case "empty" `Quick test_dag_empty;
          Alcotest.test_case "first on wire" `Quick test_dag_first_on_wire;
          Alcotest.test_case "non-ready rejected" `Quick test_traversal_rejects_non_ready;
        ] );
      ("properties", qcheck_props);
    ]
