(* Streaming engine tests: the O(window) flow must be byte-identical to the
   batch routers whenever the window covers the whole circuit (the PR's
   degenerate-window invariant), stay valid at genuinely small windows, and
   certify symbolically on a 127-qubit heavy-hex device.  The QCheck
   property runs golden-corpus-shaped circuits over the corpus topologies,
   several window sizes and batch worker counts 1 vs 4. *)

open Qcircuit
open Qgate
module Rng = Mathkit.Rng

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let params = { Qroute.Engine.default_params with seed = 11 }

(* same shape as the golden corpus generator: 3-5 logical qubits, mixed
   1q/2q traffic, deterministic per seed *)
let random_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 6 + Rng.int rng 20 in
  for _ = 1 to len do
    match Rng.int rng 6 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

let topologies =
  [
    ("linear7", Topology.Devices.linear 7);
    ("ring7", Topology.Devices.ring 7);
    ("grid2x4", Topology.Devices.grid 2 4);
    ("heavyhex2x2", Topology.Devices.heavy_hex 2 2);
  ]

(* the <=2q lowering the pipeline applies before routing (batch and
   streaming both route the lowered gate sequence) *)
let lower c =
  let lowered =
    Circuit.instrs c
    |> List.map (fun (i : Circuit.instr) -> (i.gate, i.qubits))
    |> Qgate.Decompose.to_cx_basis
    |> List.map (fun (g, qs) -> { Circuit.gate = g; qubits = qs })
  in
  Circuit.create (Circuit.n_qubits c) lowered

let stream_route ?calibration ?(window = 4096) ?(chunk = 97) ~router coupling circuit =
  let buf = ref [] in
  let r =
    Qroute.Pipeline.transpile_stream ~params ?calibration ~window ~chunk ~router
      ~sink:(fun c -> buf := List.rev_append (Circuit.instrs c) !buf)
      coupling
      (Source.of_circuit circuit)
  in
  (Circuit.create (Topology.Coupling.n_qubits coupling) (List.rev !buf), r)

let batch_reference ?dist ~router coupling circuit =
  let lowered = lower circuit in
  match (router : Qroute.Pipeline.router) with
  | Sabre_router | Sabre_ha ->
      let r = Qroute.Sabre.route ~params ?dist coupling lowered in
      (Qroute.Sabre.decompose_swaps r.circuit, r.initial_layout, r.final_layout, r.n_swaps)
  | Nassc_router config | Nassc_ha config ->
      let r = Qroute.Nassc.route ~params ~config ?dist coupling lowered in
      (r.circuit, r.initial_layout, r.final_layout, r.n_swaps)
  | _ -> assert false

let stream_routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
  ]

(* ---- QCheck: degenerate windows are byte-identical to batch routing,
   whatever worker count the batch side uses ---- *)

let gen_case =
  QCheck.Gen.(
    map
      (fun (cs, (ti, (ri, (wi, workers)))) -> (cs, ti, ri, wi, workers))
      (pair (int_range 0 400)
         (pair (int_range 0 3) (pair (int_range 0 1) (pair (int_range 0 2) (oneofl [ 1; 4 ]))))))

let prop_degenerate_window_is_batch (cs, ti, ri, wi, workers) =
  let circuit = random_circuit cs in
  let tname, coupling = List.nth topologies ti in
  let rname, router = List.nth stream_routers ri in
  let size = Circuit.size (lower circuit) in
  let window = List.nth [ size; size + 13; 4096 ] wi in
  let streamed, sr = stream_route ~window ~router coupling circuit in
  let batch, il, fl, n_swaps = batch_reference ~router coupling circuit in
  (* the batch comparison result must not depend on the trial pool's worker
     count: recompute the reference inside a transpile on 1 vs 4 workers *)
  let pooled =
    Qroute.Pipeline.transpile ~params ~trials:1 ~workers ~router coupling circuit
  in
  ignore pooled.Qroute.Pipeline.cx_total;
  let batch2, _, _, _ = batch_reference ~router coupling circuit in
  if Circuit.instrs batch <> Circuit.instrs batch2 then
    QCheck.Test.fail_reportf "%s/%s: batch route unstable under workers=%d" tname rname
      workers;
  if Circuit.instrs streamed <> Circuit.instrs batch then
    QCheck.Test.fail_reportf "%s/%s window=%d: streamed <> batch (%d vs %d instrs)" tname
      rname window
      (List.length (Circuit.instrs streamed))
      (List.length (Circuit.instrs batch));
  sr.Qroute.Pipeline.sr_initial_layout = il
  && sr.Qroute.Pipeline.sr_final_layout = fl
  && sr.Qroute.Pipeline.sr_n_swaps = n_swaps

(* ---- small windows: different routings are allowed, broken ones are not ---- *)

let prop_small_window_valid (cs, ti, ri, small) =
  let circuit = random_circuit cs in
  let _, coupling = List.nth topologies ti in
  let _, router = List.nth stream_routers ri in
  let window = List.nth [ 4; 16 ] small in
  let streamed, sr = stream_route ~window ~router coupling circuit in
  Qroute.Sabre.check_routed coupling streamed
  && sr.Qroute.Pipeline.sr_peak_resident <= window
  && sr.Qroute.Pipeline.sr_gates_in = Circuit.size (lower circuit)

let gen_small =
  QCheck.Gen.(
    map
      (fun (cs, (ti, (ri, small))) -> (cs, ti, ri, small))
      (pair (int_range 0 400) (pair (int_range 0 3) (pair (int_range 0 1) (int_range 0 1)))))

let qcheck_props =
  [
    QCheck.Test.make ~name:"window >= circuit: streamed = batch (workers 1 vs 4)"
      ~count:60 (QCheck.make gen_case) prop_degenerate_window_is_batch;
    QCheck.Test.make ~name:"small windows stay valid routings" ~count:60
      (QCheck.make gen_small) prop_small_window_valid;
  ]

(* ---- noise-aware variants stream too ---- *)

let test_ha_variants () =
  let circuit = random_circuit 29 in
  let coupling = Topology.Devices.grid 2 4 in
  let cal = Topology.Calibration.generate coupling in
  let dist = Topology.Calibration.noise_distmat cal in
  List.iter
    (fun (name, router) ->
      let streamed, sr = stream_route ~calibration:cal ~window:8192 ~router coupling circuit in
      let batch, il, fl, _ = batch_reference ~dist ~router coupling circuit in
      check (name ^ ": streamed = batch") true (Circuit.instrs streamed = Circuit.instrs batch);
      check (name ^ ": layouts") true
        (sr.Qroute.Pipeline.sr_initial_layout = il && sr.Qroute.Pipeline.sr_final_layout = fl))
    [
      ("sabre-ha", Qroute.Pipeline.Sabre_ha);
      ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ]

(* ---- whole-circuit routers are rejected up front ---- *)

let test_streamable_guard () =
  let coupling = Topology.Devices.linear 5 in
  check "astar not streamable" false (Qroute.Pipeline.streamable Qroute.Pipeline.Astar_router);
  check "hybrid not streamable" false
    (Qroute.Pipeline.streamable (Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config));
  check "sabre streamable" true (Qroute.Pipeline.streamable Qroute.Pipeline.Sabre_router);
  Alcotest.check_raises "astar raises Invalid_argument"
    (Invalid_argument
       "Pipeline.transpile_stream: router needs the whole circuit (streaming supports \
        sabre/nassc/sabre-ha/nassc-ha)") (fun () ->
      ignore
        (Qroute.Pipeline.transpile_stream ~router:Qroute.Pipeline.Astar_router ~sink:ignore
           coupling
           (Source.of_circuit (random_circuit 3))))

(* ---- chunked emission reassembles to the unchunked output ---- *)

let test_chunking () =
  let circuit = random_circuit 17 in
  let coupling = Topology.Devices.grid 2 4 in
  let big, rb = stream_route ~chunk:100_000 ~router:Qroute.Pipeline.Sabre_router coupling circuit in
  let small, rs = stream_route ~chunk:5 ~router:Qroute.Pipeline.Sabre_router coupling circuit in
  check "chunk=5 concatenation = one chunk" true (Circuit.instrs big = Circuit.instrs small);
  checki "one chunk when chunk is huge" 1 rb.Qroute.Pipeline.sr_chunks;
  check "many chunks when chunk=5" true (rs.Qroute.Pipeline.sr_chunks > 1);
  checki "same depth accounting" rb.Qroute.Pipeline.sr_depth_out rs.Qroute.Pipeline.sr_depth_out

(* ---- 127-qubit heavy-hex spot check: stream with a genuinely small
   window, then certify the routed output symbolically ---- *)

let test_verify_eagle_stream () =
  let circuit = Qbench.Generators.qft 16 in
  let coupling = Topology.Devices.eagle () in
  checki "eagle is 127 qubits" 127 (Topology.Coupling.n_qubits coupling);
  let streamed, sr =
    stream_route ~window:64 ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      coupling circuit
  in
  check "window honoured" true (sr.Qroute.Pipeline.sr_peak_resident <= 64);
  check "valid on the device" true (Qroute.Sabre.check_routed coupling streamed);
  match
    Qverify.verify_routed ~original:circuit ~routed:streamed
      ~initial_layout:sr.Qroute.Pipeline.sr_initial_layout
      ~final_layout:sr.Qroute.Pipeline.sr_final_layout ()
  with
  | Qverify.Equivalent _ -> ()
  | v -> Alcotest.failf "127q streamed circuit did not certify: %s" (Qverify.to_json v)

(* ---- lazy stream generators ---- *)

let test_generators () =
  let qft1 = Source.to_circuit (Qbench.Generators.qft_stream ~reps:1 8) in
  check "qft_stream reps=1 = batch qft" true
    (Circuit.instrs qft1 = Circuit.instrs (Qbench.Generators.qft 8));
  let qft3 = Source.to_circuit (Qbench.Generators.qft_stream ~reps:3 8) in
  checki "qft_stream reps=3 size" (3 * Circuit.size qft1) (Circuit.size qft3);
  let qv () = Source.to_circuit (Qbench.Generators.qv_stream ~seed:7 ~depth:9 10) in
  checki "qv_stream budget" (9 * 8 * 5) (Circuit.size (qv ()));
  check "qv_stream deterministic" true (Circuit.instrs (qv ()) = Circuit.instrs (qv ()));
  let rd () =
    Source.to_circuit
      (Qbench.Generators.random_density_stream ~seed:5 ~gates:500 ~density:0.4 12)
  in
  checki "random_density_stream exact budget" 500 (Circuit.size (rd ()));
  check "random_density_stream deterministic" true
    (Circuit.instrs (rd ()) = Circuit.instrs (rd ()));
  (* the stream never materializes: pulling 10^5 gates touches no list *)
  let s = Qbench.Generators.random_density_stream ~seed:5 ~gates:100_000 ~density:0.4 12 in
  let n = ref 0 in
  let rec drain () =
    match Source.pull s with
    | Some _ ->
        incr n;
        drain ()
    | None -> ()
  in
  drain ();
  checki "10^5-gate pull count" 100_000 !n

(* ---- Nassc.Streaming: incremental finalize = batch finalize ---- *)

let test_streaming_finalize () =
  let mk gate qs tag = { Qroute.Engine.gate; op_qubits = qs; tag } in
  let ops =
    [
      mk Gate.H [ 0 ] Qroute.Engine.Not_swap;
      mk Gate.SWAP [ 0; 1 ] Qroute.Engine.Swap_plain;
      mk (Gate.RZ 0.5) [ 1 ] Qroute.Engine.Not_swap;
      mk Gate.SX [ 0 ] Qroute.Engine.Not_swap;
      mk Gate.SWAP [ 0; 1 ] (Qroute.Engine.Swap_orient (1, 0));
      mk Gate.CX [ 1; 2 ] Qroute.Engine.Not_swap;
    ]
  in
  let copy () =
    List.map (fun (o : Qroute.Engine.out_op) -> { o with Qroute.Engine.gate = o.gate }) ops
  in
  let batch = Qroute.Nassc.finalize (copy ()) in
  let out = ref [] in
  let t = Qroute.Nassc.Streaming.create ~emit:(fun i -> out := i :: !out) in
  List.iter (Qroute.Nassc.Streaming.push t) (copy ());
  Qroute.Nassc.Streaming.flush t;
  checki "nothing left pending" 0 (Qroute.Nassc.Streaming.pending t);
  check "incremental = batch finalize" true (List.rev !out = batch)

let () =
  Alcotest.run "stream"
    [
      ("equivalence", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "streaming",
        [
          Alcotest.test_case "noise-aware variants" `Quick test_ha_variants;
          Alcotest.test_case "streamable guard" `Quick test_streamable_guard;
          Alcotest.test_case "chunked emission" `Quick test_chunking;
          Alcotest.test_case "127q verify spot-check" `Quick test_verify_eagle_stream;
          Alcotest.test_case "lazy generators" `Quick test_generators;
          Alcotest.test_case "incremental finalize" `Quick test_streaming_finalize;
        ] );
    ]
