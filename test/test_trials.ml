(* The parallel best-of-N trial engine: property tests for routing
   correctness across topologies and routers, determinism under worker-count
   changes, and bit-compatibility of the 1-trial path with the pre-trials
   single-shot pipeline. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- generators ---------- *)

let random_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 6 + Rng.int rng 20 in
  for _ = 1 to len do
    match Rng.int rng 6 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* every topology family from the paper's evaluation, sized so that a
   <=5-qubit random circuit fits and statevector equivalence stays cheap *)
let topology_for seed n_log =
  match seed mod 4 with
  | 0 -> ("linear", Topology.Devices.linear (n_log + 1))
  | 1 -> ("ring", Topology.Devices.ring (n_log + 2))
  | 2 -> ("grid", Topology.Devices.grid 2 4)
  | _ -> ("heavy-hex", Topology.Devices.heavy_hex 2 2)

let all_routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("sabre-ha", Qroute.Pipeline.Sabre_ha);
    ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

(* ---------- seed-splitting scheme ---------- *)

let test_seed_stream () =
  checki "trial 0 keeps the base seed" 42 (Qroute.Trials.trial_seed ~base:42 0);
  checki "stride is the documented prime" (42 + Qroute.Trials.seed_stride)
    (Qroute.Trials.trial_seed ~base:42 1);
  let seeds = List.init 8 (Qroute.Trials.trial_seed ~base:11) in
  checki "streams are distinct" 8 (List.length (List.sort_uniq compare seeds))

(* ---------- the generic pool ---------- *)

let test_map_orders_results () =
  let r = Qroute.Trials.map ~workers:4 ~n:17 (fun k -> k * k) in
  Array.iteri
    (fun k v -> checki "slot k holds f k" (k * k) (match v with Ok v -> v | Error _ -> -1))
    r

let test_map_zero_tasks () =
  checki "n=0 is empty" 0 (Array.length (Qroute.Trials.map ~workers:3 ~n:0 (fun k -> k)))

(* ---------- property: best-of-N is valid and never worse than 1 trial ---------- *)

let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  let prop_for (rname, router) =
    QCheck.Test.make
      ~name:(Printf.sprintf "best-of-N %s: routed_equal and cx <= single trial" rname)
      ~count:6 (QCheck.make gen_seed)
      (fun seed ->
        let c = random_circuit seed in
        let _tname, coupling = topology_for seed (Circuit.n_qubits c) in
        let params = { Qroute.Engine.default_params with seed = 1 + (seed mod 1000) } in
        let r1 = Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling c in
        let rn = Qroute.Pipeline.transpile ~params ~trials:3 ~workers:2 ~router coupling c in
        let equal_ok =
          match rn.final_layout with
          | Some fl -> Qsim.Equiv.routed_equal ~logical:c ~routed:rn.circuit ~final_layout:fl
          | None -> false
        in
        equal_ok && rn.cx_total <= r1.cx_total)
  in
  List.map QCheck_alcotest.to_alcotest (List.map prop_for all_routers)

(* ---------- determinism ---------- *)

let fingerprint (r : Qroute.Pipeline.result) = Qasm.to_string r.circuit

let test_trials_deterministic_across_runs () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let run () =
    Qroute.Pipeline.transpile ~params ~trials:8 ~router:Qroute.Pipeline.Sabre_router coupling
      c
  in
  let a = run () and b = run () in
  checki "cx stable" a.cx_total b.cx_total;
  checki "depth stable" a.depth b.depth;
  check "gate list stable" true (fingerprint a = fingerprint b)

let test_trials_deterministic_across_workers () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let with_workers w =
    Qroute.Pipeline.transpile ~params ~trials:8 ~workers:w
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling c
  in
  let a = with_workers 1 and b = with_workers 4 in
  checki "cx worker-independent" a.cx_total b.cx_total;
  checki "depth worker-independent" a.depth b.depth;
  check "gate list worker-independent" true (fingerprint a = fingerprint b);
  check "per-trial stats worker-independent" true
    (List.map
       (fun (s : Qroute.Trials.stat) -> (s.trial, s.seed, s.cx_total, s.depth, s.n_swaps))
       a.trial_stats
    = List.map
        (fun (s : Qroute.Trials.stat) -> (s.trial, s.seed, s.cx_total, s.depth, s.n_swaps))
        b.trial_stats)

(* the pre-PR single-shot pipeline on this pinned circuit, captured before
   the trials engine landed: the 1-trial path must reproduce it exactly *)
let test_single_trial_matches_pre_pr_golden () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let golden =
    [
      (Qroute.Pipeline.Sabre_router, (51, 57, 11));
      (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config, (50, 54, 12));
    ]
  in
  List.iter
    (fun (router, (cx, depth, swaps)) ->
      let r1 = Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling c in
      let r0 = Qroute.Pipeline.transpile ~params ~router coupling c in
      checki "golden cx" cx r1.cx_total;
      checki "golden depth" depth r1.depth;
      checki "golden swaps" swaps r1.n_swaps;
      check "explicit trials:1 equals default path" true (fingerprint r0 = fingerprint r1))
    golden

(* the hybrid router adds an exact solver inside the routing loop; its
   budget is node-count based (never wall clock), so its output must be as
   reproducible as the pure heuristics: byte-identical across repeat runs
   and across worker counts at a fixed seed *)
let test_hybrid_deterministic_across_runs () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let run () =
    Qroute.Pipeline.transpile ~params ~trials:8
      ~router:(Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config) coupling c
  in
  let a = run () and b = run () in
  checki "cx stable" a.cx_total b.cx_total;
  checki "depth stable" a.depth b.depth;
  checki "swaps stable" a.n_swaps b.n_swaps;
  check "gate list stable" true (fingerprint a = fingerprint b)

let test_hybrid_deterministic_across_workers () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let with_workers w =
    Qroute.Pipeline.transpile ~params ~trials:8 ~workers:w
      ~router:(Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config) coupling c
  in
  let a = with_workers 1 and b = with_workers 4 in
  checki "cx worker-independent" a.cx_total b.cx_total;
  checki "depth worker-independent" a.depth b.depth;
  check "gate list worker-independent" true (fingerprint a = fingerprint b);
  check "per-trial stats worker-independent" true
    (List.map
       (fun (s : Qroute.Trials.stat) -> (s.trial, s.seed, s.cx_total, s.depth, s.n_swaps))
       a.trial_stats
    = List.map
        (fun (s : Qroute.Trials.stat) -> (s.trial, s.seed, s.cx_total, s.depth, s.n_swaps))
        b.trial_stats)

(* the portfolio guarantee the gap corpus relies on: at equal seeds the
   hybrid never inserts more swaps than plain NASSC *)
let test_hybrid_never_worse_than_nassc () =
  List.iter
    (fun seed ->
      let c = random_circuit seed in
      let _t, coupling = topology_for seed (Circuit.n_qubits c) in
      let params = { Qroute.Engine.default_params with seed = 1 + (seed mod 97) } in
      let swaps router =
        (Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling c).Qroute.Pipeline.n_swaps
      in
      let h = swaps (Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config) in
      let n = swaps (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) in
      check (Printf.sprintf "seed %d: hybrid %d <= nassc %d" seed h n) true (h <= n))
    [ 2; 5; 23; 42; 77 ]

(* ---------- report bookkeeping ---------- *)

let test_stats_shape () =
  let c = Qbench.Generators.vqe 8 in
  let coupling = Topology.Devices.montreal in
  let params = { Qroute.Engine.default_params with seed = 3 } in
  let r =
    Qroute.Pipeline.transpile ~params ~trials:5 ~workers:2
      ~router:Qroute.Pipeline.Sabre_router coupling c
  in
  checki "one stat per trial" 5 (List.length r.trial_stats);
  List.iteri
    (fun k (s : Qroute.Trials.stat) ->
      checki "trials are ordered" k s.trial;
      checki "seed follows the stride" (Qroute.Trials.trial_seed ~base:3 k) s.seed;
      check "no error" true (s.error = None))
    r.trial_stats;
  let best = List.fold_left (fun m (s : Qroute.Trials.stat) -> min m s.cx_total) max_int r.trial_stats in
  checki "winner is the minimum over trials" best r.cx_total;
  check "wall time covers the trials" true (r.transpile_time > 0.0)

let () =
  Alcotest.run "trials"
    [
      ( "seed streams",
        [
          Alcotest.test_case "splitting" `Quick test_seed_stream;
          Alcotest.test_case "map ordering" `Quick test_map_orders_results;
          Alcotest.test_case "map empty" `Quick test_map_zero_tasks;
        ] );
      ("properties", qcheck_props);
      ( "determinism",
        [
          Alcotest.test_case "repeat runs" `Quick test_trials_deterministic_across_runs;
          Alcotest.test_case "1 vs 4 workers" `Quick test_trials_deterministic_across_workers;
          Alcotest.test_case "n=1 pre-PR golden" `Quick test_single_trial_matches_pre_pr_golden;
          Alcotest.test_case "hybrid repeat runs" `Quick test_hybrid_deterministic_across_runs;
          Alcotest.test_case "hybrid 1 vs 4 workers" `Quick
            test_hybrid_deterministic_across_workers;
          Alcotest.test_case "hybrid <= nassc swaps" `Quick test_hybrid_never_worse_than_nassc;
        ] );
      ("report", [ Alcotest.test_case "stats shape" `Quick test_stats_shape ]);
    ]
