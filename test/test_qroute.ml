open Mathkit
open Qcircuit
open Qgate
open Qroute

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_2q_circuit rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    match Rng.int rng 5 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* Routed-circuit semantics (see Qsim.Equiv): the routed state restricted
   to the final layout must equal the logical state. *)
let routing_preserves_semantics routed_circuit final_layout logical =
  Qsim.Equiv.routed_equal ~logical ~routed:routed_circuit ~final_layout

(* ---------- engine basics ---------- *)

let test_fully_connected_no_swaps () =
  let coupling = Topology.Devices.fully_connected 5 in
  let rng = Rng.create 1 in
  let c = random_2q_circuit rng 5 30 in
  let r = Sabre.route coupling c in
  checki "no swaps on full connectivity" 0 r.n_swaps;
  check "still valid" true (Sabre.check_routed coupling r.circuit)

let test_route_rejects_wide_gates () =
  let coupling = Topology.Devices.linear 4 in
  let c = Circuit.create 4 [ { gate = Gate.CCX; qubits = [ 0; 1; 2 ] } ] in
  check "raises" true
    (try
       ignore (Sabre.route coupling c);
       false
     with Invalid_argument _ -> true)

let test_mapping_layout_validation () =
  check "duplicate physical rejected" true
    (try
       ignore (Engine.mapping_of_layout ~n_phys:3 [| 1; 1 |]);
       false
     with Invalid_argument _ -> true)

(* ---------- SABRE ---------- *)

let devices =
  [
    ("linear5", Topology.Devices.linear 5, 5);
    ("grid9", Topology.Devices.grid 3 3, 9);
    ("montreal", Topology.Devices.montreal, 27);
  ]

let test_sabre_validity () =
  let rng = Rng.create 42 in
  List.iter
    (fun (name, coupling, n) ->
      for _ = 1 to 3 do
        let c = random_2q_circuit rng (min n 5) 40 in
        let r = Sabre.route coupling c in
        check (name ^ " routed validly") true (Sabre.check_routed coupling r.circuit)
      done)
    devices

let test_sabre_semantics () =
  let rng = Rng.create 7 in
  for trial = 1 to 8 do
    let c = random_2q_circuit rng 4 25 in
    let coupling = Topology.Devices.linear 5 in
    let params = { Engine.default_params with seed = trial } in
    let r = Sabre.route ~params coupling c in
    let expanded = Sabre.decompose_swaps r.circuit in
    check "sabre preserves semantics" true
      (routing_preserves_semantics expanded r.final_layout c)
  done

let test_sabre_layout_is_permutation () =
  let rng = Rng.create 3 in
  let c = random_2q_circuit rng 5 30 in
  let r = Sabre.route Topology.Devices.montreal c in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      check "phys in range" true (p >= 0 && p < 27);
      check "no duplicate" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ())
    r.final_layout

(* ---------- NASSC ---------- *)

let test_nassc_validity () =
  let rng = Rng.create 43 in
  List.iter
    (fun (name, coupling, n) ->
      for _ = 1 to 3 do
        let c = random_2q_circuit rng (min n 5) 40 in
        let r = Nassc.route coupling c in
        check (name ^ " nassc routed validly") true (Sabre.check_routed coupling r.circuit)
      done)
    devices

let test_nassc_semantics () =
  let rng = Rng.create 17 in
  for trial = 1 to 8 do
    let c = random_2q_circuit rng 4 25 in
    let coupling = Topology.Devices.linear 5 in
    let params = { Engine.default_params with seed = 100 + trial } in
    let r = Nassc.route ~params coupling c in
    check "nassc preserves semantics" true
      (routing_preserves_semantics r.circuit r.final_layout c)
  done

let test_nassc_no_swap_gates_left () =
  let rng = Rng.create 19 in
  let c = random_2q_circuit rng 5 40 in
  let r = Nassc.route (Topology.Devices.linear 6) c in
  checki "swaps all decomposed" 0 (Circuit.gate_count r.circuit "swap")

let test_nassc_disabled_equals_sabre () =
  (* with every optimization off the two routers must produce the same
     number of swaps from the same seed *)
  let rng = Rng.create 23 in
  let off =
    { Nassc.enable_2q = false; enable_commute1 = false; enable_commute2 = false;
      orient_swaps = true; scan_limit = 20 }
  in
  for trial = 1 to 5 do
    let c = random_2q_circuit rng 5 40 in
    let params = { Engine.default_params with seed = trial } in
    let rs = Sabre.route ~params (Topology.Devices.linear 6) c in
    let rn = Nassc.route ~params ~config:off (Topology.Devices.linear 6) c in
    checki "same swap count" rs.n_swaps rn.n_swaps
  done

(* ---------- finalize / oriented decomposition ---------- *)

let test_finalize_plain () =
  let ops =
    [
      { Engine.gate = Gate.H; op_qubits = [ 0 ]; tag = Engine.Not_swap };
      { Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ]; tag = Engine.Swap_plain };
    ]
  in
  let instrs = Nassc.finalize ops in
  checki "3 cx + 1 h" 4 (List.length instrs);
  let c = Circuit.create 2 instrs in
  let expected =
    Circuit.create 2
      [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.SWAP; qubits = [ 0; 1 ] } ]
  in
  check "plain finalize unitary" true
    (Mat.equal_up_to_phase (Circuit.unitary c) (Circuit.unitary expected))

let test_finalize_oriented_moves_1q () =
  (* cx(0,1); rz on 0; oriented swap: rz must move to wire 1 after the
     swap, and the decomposition must start with cx(0,1) *)
  let ops =
    [
      { Engine.gate = Gate.CX; op_qubits = [ 0; 1 ]; tag = Engine.Not_swap };
      { Engine.gate = Gate.RZ 0.7; op_qubits = [ 0 ]; tag = Engine.Not_swap };
      { Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ]; tag = Engine.Swap_orient (0, 1) };
    ]
  in
  let instrs = Nassc.finalize ops in
  let c = Circuit.create 2 instrs in
  let reference =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.RZ 0.7; qubits = [ 0 ] };
        { gate = Gate.SWAP; qubits = [ 0; 1 ] };
      ]
  in
  check "oriented finalize unitary" true
    (Mat.equal_up_to_phase (Circuit.unitary c) (Circuit.unitary reference));
  (* adjacent cx(0,1) cx(0,1) must now be present for cancellation *)
  (match instrs with
  | { gate = Gate.CX; qubits = [ 0; 1 ] } :: { gate = Gate.CX; qubits = [ 0; 1 ] } :: _ ->
      ()
  | _ -> Alcotest.fail "expected back-to-back cx(0,1)");
  let optimized = Qpasses.Cancellation.run c in
  check "cancellation fires" true (Circuit.cx_count optimized < 4)

let test_finalize_oriented_semantics_random () =
  (* random circuits with oriented swaps keep their unitary *)
  let rng = Rng.create 31 in
  for _ = 1 to 10 do
    let mk_tag () =
      match Rng.int rng 3 with
      | 0 -> Engine.Swap_plain
      | 1 -> Engine.Swap_orient (0, 1)
      | _ -> Engine.Swap_orient (1, 0)
    in
    let ops = ref [] in
    for _ = 1 to 12 do
      match Rng.int rng 4 with
      | 0 ->
          ops :=
            { Engine.gate = Gate.H; op_qubits = [ Rng.int rng 2 ]; tag = Engine.Not_swap }
            :: !ops
      | 1 ->
          ops :=
            { Engine.gate = Gate.CX; op_qubits = [ 0; 1 ]; tag = Engine.Not_swap } :: !ops
      | 2 ->
          ops :=
            { Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ]; tag = mk_tag () } :: !ops
      | _ ->
          ops :=
            {
              Engine.gate = Gate.RZ (Rng.float rng 3.0);
              op_qubits = [ Rng.int rng 2 ];
              tag = Engine.Not_swap;
            }
            :: !ops
    done;
    let ops = List.rev !ops in
    let finalized = Circuit.create 2 (Nassc.finalize ops) in
    let reference =
      Circuit.create 2
        (List.map
           (fun (op : Engine.out_op) ->
             { Circuit.gate = op.gate; qubits = op.op_qubits })
           ops)
    in
    check "finalize preserves unitary" true
      (Mat.equal_up_to_phase (Circuit.unitary finalized) (Circuit.unitary reference))
  done

(* ---------- pipeline ---------- *)

let test_pipeline_end_to_end_semantics () =
  let rng = Rng.create 57 in
  for trial = 1 to 5 do
    let c = random_2q_circuit rng 4 20 in
    let coupling = Topology.Devices.linear 5 in
    let params = { Engine.default_params with seed = 200 + trial } in
    List.iter
      (fun router ->
        let r = Pipeline.transpile ~params ~router coupling c in
        check "basis output" true (Qpasses.Basis.check r.circuit);
        match r.final_layout with
        | Some fl -> check "pipeline preserves semantics" true
            (routing_preserves_semantics r.circuit fl c)
        | None -> Alcotest.fail "expected layout")
      [ Pipeline.Sabre_router; Pipeline.Nassc_router Nassc.default_config ]
  done

let test_pipeline_baseline_no_layout () =
  let c = Qbench.Generators.grover 4 in
  let r = Pipeline.transpile ~router:Pipeline.Full_connectivity Topology.Devices.montreal c in
  check "no layout for baseline" true (r.initial_layout = None);
  checki "no swaps" 0 r.n_swaps;
  check "basis" true (Qpasses.Basis.check r.circuit)

let test_pipeline_grover4_calibration () =
  (* the original-circuit CNOT count for grover-4 must match the paper: 84 *)
  let c = Qbench.Generators.grover 4 in
  let r = Pipeline.transpile ~router:Pipeline.Full_connectivity Topology.Devices.montreal c in
  check "grover4 original cx close to paper (84)" true (abs (r.cx_total - 84) <= 8)

let test_pipeline_routers_beat_nothing () =
  (* routed cx >= original cx *)
  let c = Qbench.Generators.vqe 8 in
  let coupling = Topology.Devices.montreal in
  let base = Pipeline.transpile ~router:Pipeline.Full_connectivity coupling c in
  let sabre = Pipeline.transpile ~router:Pipeline.Sabre_router coupling c in
  check "routing adds gates" true (sabre.cx_total >= base.cx_total)

let test_nassc_beats_sabre_on_average () =
  (* headline claim, on a seed-averaged small set; generous margin *)
  let coupling = Topology.Devices.linear 10 in
  let total router =
    List.fold_left
      (fun acc seed ->
        let params = { Engine.default_params with seed } in
        let c = Qbench.Generators.vqe 8 in
        let r = Pipeline.transpile ~params ~router coupling c in
        acc + r.cx_total)
      0 [ 1; 2; 3 ]
  in
  let s = total Pipeline.Sabre_router in
  let n = total (Pipeline.Nassc_router Nassc.default_config) in
  check "nassc no worse than sabre on vqe8/linear" true (n <= s)

(* ---------- HA distance ---------- *)

let test_ha_routing_valid () =
  let coupling = Topology.Devices.montreal in
  let cal = Topology.Calibration.generate coupling in
  let dist = Topology.Calibration.noise_distmat cal in
  let rng = Rng.create 71 in
  let c = random_2q_circuit rng 6 40 in
  let r = Sabre.route ~dist coupling c in
  check "ha-routed valid" true (Sabre.check_routed coupling r.circuit);
  let rn = Nassc.route ~dist coupling c in
  check "nassc-ha valid" true (Sabre.check_routed coupling rn.circuit)

(* ---------- metrics ---------- *)

let test_metrics_deltas () =
  let row =
    {
      Metrics.name = "x"; n_qubits = 4; cx_original = 100; cx_sabre = 200; cx_nassc = 150;
      depth_original = 50; depth_sabre = 100; depth_nassc = 80; time_sabre = 1.0;
      time_nassc = 1.3;
    }
  in
  checki "cx add sabre" 100 (Metrics.cx_add_sabre row);
  checki "cx add nassc" 50 (Metrics.cx_add_nassc row);
  Alcotest.(check (float 1e-9)) "delta total" 0.25 (Metrics.delta_cx_total row);
  Alcotest.(check (float 1e-9)) "delta add" 0.5 (Metrics.delta_cx_add row);
  Alcotest.(check (float 1e-9)) "time ratio" 1.3 (Metrics.time_ratio row)

let test_metrics_geomean () =
  Alcotest.(check (float 1e-9)) "geomean of zeros" 0.0 (Metrics.geometric_mean [ 0.0; 0.0 ]);
  let g = Metrics.geometric_mean [ 0.5; 0.5 ] in
  Alcotest.(check (float 1e-9)) "geomean of halves" 0.5 g;
  (* mixed signs stay sane *)
  let g2 = Metrics.geometric_mean [ 0.5; -0.5 ] in
  check "mixed in range" true (g2 > -0.5 && g2 < 0.5)

let () =
  Alcotest.run "qroute"
    [
      ( "engine",
        [
          Alcotest.test_case "full connectivity" `Quick test_fully_connected_no_swaps;
          Alcotest.test_case "rejects wide gates" `Quick test_route_rejects_wide_gates;
          Alcotest.test_case "layout validation" `Quick test_mapping_layout_validation;
        ] );
      ( "sabre",
        [
          Alcotest.test_case "validity" `Quick test_sabre_validity;
          Alcotest.test_case "semantics" `Quick test_sabre_semantics;
          Alcotest.test_case "layout permutation" `Quick test_sabre_layout_is_permutation;
        ] );
      ( "nassc",
        [
          Alcotest.test_case "validity" `Quick test_nassc_validity;
          Alcotest.test_case "semantics" `Quick test_nassc_semantics;
          Alcotest.test_case "swaps decomposed" `Quick test_nassc_no_swap_gates_left;
          Alcotest.test_case "disabled equals sabre" `Quick test_nassc_disabled_equals_sabre;
        ] );
      ( "finalize",
        [
          Alcotest.test_case "plain" `Quick test_finalize_plain;
          Alcotest.test_case "oriented moves 1q" `Quick test_finalize_oriented_moves_1q;
          Alcotest.test_case "random semantics" `Quick test_finalize_oriented_semantics_random;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "end to end semantics" `Quick test_pipeline_end_to_end_semantics;
          Alcotest.test_case "baseline" `Quick test_pipeline_baseline_no_layout;
          Alcotest.test_case "grover4 calibration" `Quick test_pipeline_grover4_calibration;
          Alcotest.test_case "routing adds gates" `Quick test_pipeline_routers_beat_nothing;
          Alcotest.test_case "nassc vs sabre" `Quick test_nassc_beats_sabre_on_average;
        ] );
      ("ha", [ Alcotest.test_case "noise-aware routing" `Quick test_ha_routing_valid ]);
      ( "metrics",
        [
          Alcotest.test_case "deltas" `Quick test_metrics_deltas;
          Alcotest.test_case "geomean" `Quick test_metrics_geomean;
        ] );
    ]
