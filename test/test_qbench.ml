open Qcircuit
open Qbench

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let lowered_cx c =
  Circuit.cx_count (Qroute.Pipeline.lower_to_2q c)

(* paper Table I CNOT_total calibration points that our generators match
   exactly (see Generators doc) *)
let test_vqe_cx_counts () =
  checki "vqe8 = 84" 84 (lowered_cx (Generators.vqe 8));
  checki "vqe12 = 198" 198 (lowered_cx (Generators.vqe 12))

let test_bv_cx_count () = checki "bv19 = 18" 18 (lowered_cx (Generators.bernstein_vazirani 19))

let test_qft_cx_counts () =
  checki "qft15 = 210" 210 (lowered_cx (Generators.qft 15));
  checki "qft20 = 380 (paper 374 post-opt)" 380 (lowered_cx (Generators.qft 20))

let test_grover4_cx_count () = checki "grover4 = 84" 84 (lowered_cx (Generators.grover 4))

let test_adder_cx_count () = checki "adder10 = 65" 65 (lowered_cx (Generators.adder 10))

let test_qubit_counts () =
  List.iter
    (fun (e : Suite.entry) ->
      checki (e.name ^ " qubits") e.n_qubits (Circuit.n_qubits (e.build ())))
    Suite.paper_suite

let test_suite_complete () =
  checki "15 benchmarks" 15 (List.length Suite.paper_suite);
  check "has heavy entries" true (List.exists (fun e -> e.Suite.heavy) Suite.paper_suite);
  check "has noise subset" true
    (List.exists (fun e -> e.Suite.noise_subset) Suite.paper_suite)

let test_find () =
  let e = Suite.find "QFT 15-qubits" in
  checki "qft15 qubits" 15 e.n_qubits;
  check "unknown raises" true
    (try
       ignore (Suite.find "nope");
       false
     with Not_found -> true)

let test_revlib_targets () =
  (* lowered CNOT totals approximate the paper's originals (within 2%) *)
  let close name target c =
    let cx = lowered_cx c in
    let err = Float.abs (float_of_int (cx - target)) /. float_of_int target in
    check (Printf.sprintf "%s cx %d within 2%% of %d" name cx target) true (err < 0.02)
  in
  close "sqn_258" 4459 (Revlib_like.sqn_258 ());
  close "rd84_253" 5960 (Revlib_like.rd84_253 ());
  close "co14_215" 7840 (Revlib_like.co14_215 ());
  close "sym9_193" 15232 (Revlib_like.sym9_193 ())

let test_revlib_deterministic () =
  check "same seed, same netlist" true
    (Circuit.equal (Revlib_like.sqn_258 ()) (Revlib_like.sqn_258 ()));
  check "different seeds differ" false
    (Circuit.equal (Revlib_like.sqn_258 ()) (Revlib_like.mct_netlist ~seed:1 ~n:10 ~target_cx:4459))

let test_grover_finds_marked_state () =
  (* grover-4 must concentrate probability on |1111> *)
  let c = Generators.grover 4 in
  let s = Qsim.State.create 4 in
  Qsim.State.apply_circuit s c;
  let p_marked = Qsim.State.probability s 0b1111 in
  check "marked state amplified" true (p_marked > 0.5);
  checki "most likely is marked" 0b1111 (Qsim.State.most_likely s)

let test_qpe_estimates_phase () =
  (* phase 0.3203125 = 0.0101001b exactly representable on 8 counting bits *)
  let c = Generators.qpe 9 in
  let s = Qsim.State.create 9 in
  Qsim.State.apply_circuit s c;
  let out = Qsim.State.most_likely s in
  (* counting register = qubits 0..7, qubit 0 the most significant bit of
     the estimate; the eigen qubit is the least significant index bit *)
  let counting = out lsr 1 in
  let est = float_of_int counting /. 256.0 in
  let target = 0.3203125 in
  check "qpe phase recovered exactly" true (Float.abs (est -. target) < 1e-9);
  check "estimate deterministic" true (Qsim.State.probability s out > 0.99)

(* ---- matrix-family generator properties ----

   Every parameterized family must be a pure function of its arguments
   (same seed => byte-identical circuit, checked through Gate.add_signature
   hashing), hit its closed-form instruction budget exactly, keep every
   operand in range, and land its 2q-gate density / edge probability where
   the parameters asked. *)

let circuit_digest c =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int (Circuit.n_qubits c));
  List.iter
    (fun (i : Circuit.instr) ->
      Qgate.Gate.add_signature b i.gate;
      List.iter
        (fun q ->
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int q))
        i.qubits;
      Buffer.add_char b ';')
    (Circuit.instrs c);
  Digest.to_hex (Digest.string (Buffer.contents b))

let operands_in_range c =
  let n = Circuit.n_qubits c in
  List.for_all
    (fun (i : Circuit.instr) -> List.for_all (fun q -> q >= 0 && q < n) i.qubits)
    (Circuit.instrs c)

let prop_random_density =
  let gen =
    QCheck.Gen.(
      quad (int_range 0 1_000_000) (int_range 2 10) (int_range 0 80)
        (oneofl [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]))
  in
  QCheck.Test.make ~name:"random_density: deterministic, exact budget, in range"
    ~count:60 (QCheck.make gen) (fun (seed, n, gates, density) ->
      let c = Generators.random_density ~seed ~gates ~density n in
      let c' = Generators.random_density ~seed ~gates ~density n in
      let n2q = int_of_float (Float.round (density *. float_of_int gates)) in
      circuit_digest c = circuit_digest c'
      && Circuit.size c = gates
      && Circuit.two_qubit_count c = n2q
      && operands_in_range c
      (* realized density sits inside the requested bucket (rounding only) *)
      && (gates = 0
         || Float.abs
              ((float_of_int (Circuit.two_qubit_count c) /. float_of_int gates)
              -. density)
            <= (0.5 /. float_of_int gates) +. 1e-9))

let prop_qaoa_er =
  let gen =
    QCheck.Gen.(
      quad (int_range 0 1_000_000) (int_range 2 10) (int_range 0 3)
        (oneofl [ 0.0; 0.3; 0.5; 0.8; 1.0 ]))
  in
  QCheck.Test.make ~name:"qaoa_erdos_renyi: deterministic, graph-consistent budget"
    ~count:60 (QCheck.make gen) (fun (seed, n, p, edge_prob) ->
      let c = Generators.qaoa_erdos_renyi ~seed ~p ~edge_prob n in
      let c' = Generators.qaoa_erdos_renyi ~seed ~p ~edge_prob n in
      let edges = Generators.erdos_renyi_edges ~seed ~edge_prob n in
      let e = List.length edges in
      let max_pairs = n * (n - 1) / 2 in
      let sorted_distinct =
        List.sort_uniq compare edges = edges
        && List.for_all (fun (u, v) -> 0 <= u && u < v && v < n) edges
      in
      circuit_digest c = circuit_digest c'
      && sorted_distinct
      && Circuit.size c = n + (p * (e + n))
      && Circuit.gate_count c "h" = n
      && Circuit.gate_count c "rzz" = p * e
      && Circuit.gate_count c "rx" = p * n
      && operands_in_range c
      && (edge_prob > 0.0 || e = 0)
      && (edge_prob < 1.0 || e = max_pairs))

let prop_brickwork =
  let gen =
    QCheck.Gen.(triple (int_range 0 1_000_000) (int_range 2 12) (int_range 0 6))
  in
  QCheck.Test.make ~name:"supremacy_brickwork: deterministic, exact budget" ~count:60
    (QCheck.make gen) (fun (seed, n, cycles) ->
      let c = Generators.supremacy_brickwork ~seed ~cycles n in
      let c' = Generators.supremacy_brickwork ~seed ~cycles n in
      let czs = ref 0 in
      for cycle = 0 to cycles - 1 do
        czs := !czs + if cycle mod 2 = 0 then n / 2 else (n - 1) / 2
      done;
      circuit_digest c = circuit_digest c'
      && Circuit.size c = (cycles * n) + !czs
      && Circuit.two_qubit_count c = !czs
      && Circuit.gate_count c "cz" = !czs
      && operands_in_range c)

let prop_ghz_chain =
  QCheck.Test.make ~name:"ghz_chain: exact budget, chain depth" ~count:20
    (QCheck.make (QCheck.Gen.int_range 2 15)) (fun n ->
      let c = Generators.ghz_chain n in
      Circuit.equal c (Generators.ghz_chain n)
      && Circuit.size c = n
      && Circuit.cx_count c = n - 1
      && Circuit.depth c = n
      && operands_in_range c)

let prop_cx_ladder =
  let gen = QCheck.Gen.(pair (oneofl [ 4; 6; 8; 10 ]) (int_range 1 4)) in
  QCheck.Test.make ~name:"cx_ladder: exact budget, all-CX body" ~count:20
    (QCheck.make gen) (fun (n, rounds) ->
      let c = Generators.cx_ladder ~rounds n in
      let k = n / 2 in
      Circuit.equal c (Generators.cx_ladder ~rounds n)
      && Circuit.size c = 1 + (rounds * ((3 * k) - 2))
      && Circuit.cx_count c = Circuit.size c - 1
      && Circuit.two_qubit_count c = Circuit.size c - 1
      && operands_in_range c)

(* pinned seeds => deterministic statistical check, no flake: over 200
   seeded G(8, p) draws the mean edge density must track p *)
let test_er_edge_probability () =
  let n = 8 in
  let pairs = n * (n - 1) / 2 in
  List.iter
    (fun p ->
      let total =
        List.fold_left
          (fun acc seed ->
            acc + List.length (Generators.erdos_renyi_edges ~seed ~edge_prob:p n))
          0
          (List.init 200 (fun i -> i))
      in
      let mean = float_of_int total /. float_of_int (200 * pairs) in
      check
        (Printf.sprintf "mean G(8, %.1f) density %.3f within 0.05" p mean)
        true
        (Float.abs (mean -. p) < 0.05))
    [ 0.2; 0.5; 0.8 ]

(* ---- Jsonlite printer: floats must re-parse to the same value ---- *)

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let roundtrips f =
  match Jsonlite.of_string (Jsonlite.number_to_string f) with
  | Jsonlite.Num g -> bits_equal f g
  | _ -> false

let test_jsonlite_float_roundtrip () =
  List.iter
    (fun f -> check (Printf.sprintf "%h round-trips" f) true (roundtrips f))
    [
      0.0; -0.0; 1.0; -1.0; 0.1; 1.0 /. 3.0; Float.pi; 1e-300; 4e-324;
      1.7976931348623157e308; 2.2250738585072014e-308; 9007199254740992.0;
      1.5e16; 1e22; 123456.789; -0.6496140651980709; 1.542857142857143;
    ]

let prop_jsonlite_float_roundtrip =
  QCheck.Test.make ~name:"jsonlite: every finite float round-trips exactly" ~count:500
    (QCheck.make QCheck.Gen.float) (fun f ->
      (not (Float.is_finite f)) || roundtrips f)

let test_jsonlite_serialize_roundtrip () =
  let v =
    Jsonlite.Obj
      [
        ("esp", Jsonlite.Num 0.6496140651980709);
        ("overhead", Jsonlite.Num 1.542857142857143);
        ("name\n\"quoted\"", Jsonlite.Str "tab\there");
        ("cells", Jsonlite.List [ Jsonlite.Num 3.0; Jsonlite.Bool true; Jsonlite.Null ]);
      ]
  in
  let compact = Jsonlite.of_string (Jsonlite.serialize v) in
  let pretty = Jsonlite.of_string (Jsonlite.serialize ~indent:2 v) in
  check "compact round-trip" true (compact = v);
  check "pretty round-trip" true (pretty = v)

let test_multiplier_structure () =
  let c = Generators.multiplier 25 in
  checki "25 qubits" 25 (Circuit.n_qubits c);
  let cx = lowered_cx c in
  check "multiplier size plausible (paper 670)" true (cx > 300 && cx < 1400)

let () =
  Alcotest.run "qbench"
    [
      ( "calibration",
        [
          Alcotest.test_case "vqe counts" `Quick test_vqe_cx_counts;
          Alcotest.test_case "bv count" `Quick test_bv_cx_count;
          Alcotest.test_case "qft counts" `Quick test_qft_cx_counts;
          Alcotest.test_case "grover4 count" `Quick test_grover4_cx_count;
          Alcotest.test_case "adder count" `Quick test_adder_cx_count;
          Alcotest.test_case "revlib targets" `Quick test_revlib_targets;
        ] );
      ( "suite",
        [
          Alcotest.test_case "qubit counts" `Quick test_qubit_counts;
          Alcotest.test_case "complete" `Quick test_suite_complete;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "revlib deterministic" `Quick test_revlib_deterministic;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "grover amplifies" `Quick test_grover_finds_marked_state;
          Alcotest.test_case "qpe phase" `Quick test_qpe_estimates_phase;
          Alcotest.test_case "multiplier structure" `Quick test_multiplier_structure;
        ] );
      ( "matrix families",
        [
          QCheck_alcotest.to_alcotest prop_random_density;
          QCheck_alcotest.to_alcotest prop_qaoa_er;
          QCheck_alcotest.to_alcotest prop_brickwork;
          QCheck_alcotest.to_alcotest prop_ghz_chain;
          QCheck_alcotest.to_alcotest prop_cx_ladder;
          Alcotest.test_case "erdos-renyi edge probability" `Quick
            test_er_edge_probability;
        ] );
      ( "jsonlite",
        [
          Alcotest.test_case "float round-trip corpus" `Quick
            test_jsonlite_float_roundtrip;
          QCheck_alcotest.to_alcotest prop_jsonlite_float_roundtrip;
          Alcotest.test_case "serialize/parse round-trip" `Quick
            test_jsonlite_serialize_roundtrip;
        ] );
    ]
