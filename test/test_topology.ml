open Topology

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- coupling ---------- *)

let test_create_validates () =
  check "self-loop rejected" true
    (try
       ignore (Coupling.create 3 [ (1, 1) ]);
       false
     with Invalid_argument _ -> true);
  check "out of range rejected" true
    (try
       ignore (Coupling.create 3 [ (0, 5) ]);
       false
     with Invalid_argument _ -> true);
  check "duplicate rejected" true
    (try
       ignore (Coupling.create 3 [ (0, 1); (1, 0) ]);
       false
     with Invalid_argument _ -> true)

let test_linear_structure () =
  let c = Devices.linear 6 in
  checki "qubits" 6 (Coupling.n_qubits c);
  checki "edges" 5 (List.length (Coupling.edges c));
  checki "distance ends" 5 (Coupling.distance c 0 5);
  checki "diameter" 5 (Coupling.diameter c);
  check "adjacent" true (Coupling.connected c 2 3);
  check "not adjacent" false (Coupling.connected c 0 2);
  checki "endpoint degree" 1 (Coupling.degree c 0);
  checki "middle degree" 2 (Coupling.degree c 3)

let test_grid_structure () =
  let c = Devices.grid 3 4 in
  checki "qubits" 12 (Coupling.n_qubits c);
  (* edges: 3*3 horizontal + 2*4 vertical = 17 *)
  checki "edges" 17 (List.length (Coupling.edges c));
  checki "corner to corner" 5 (Coupling.distance c 0 11);
  check "row neighbors" true (Coupling.connected c 0 1);
  check "col neighbors" true (Coupling.connected c 0 4);
  check "diagonal not coupled" false (Coupling.connected c 0 5)

let test_montreal_structure () =
  let c = Devices.montreal in
  checki "27 qubits" 27 (Coupling.n_qubits c);
  checki "28 edges" 28 (List.length (Coupling.edges c));
  check "connected graph" true (Coupling.is_connected_graph c);
  (* heavy-hex degree profile: no vertex exceeds degree 3 *)
  let max_deg = List.init 27 (fun q -> Coupling.degree c q) |> List.fold_left max 0 in
  checki "max degree 3" 3 max_deg;
  (* spot-check published adjacencies *)
  check "1-4 coupled" true (Coupling.connected c 1 4);
  check "25-26 coupled" true (Coupling.connected c 25 26);
  check "0-2 not coupled" false (Coupling.connected c 0 2)

let test_ring_structure () =
  let c = Devices.ring 8 in
  checki "edges" 8 (List.length (Coupling.edges c));
  checki "diameter" 4 (Coupling.diameter c);
  checki "wraparound distance" 1 (Coupling.distance c 0 7);
  check "two shortest paths exist" true (Coupling.distance c 0 4 = 4)

let test_fully_connected () =
  let c = Devices.fully_connected 6 in
  checki "edges" 15 (List.length (Coupling.edges c));
  checki "diameter" 1 (Coupling.diameter c)

let test_shortest_path_properties () =
  let c = Devices.montreal in
  let path = Coupling.shortest_path c 0 26 in
  checki "path length = distance + 1" (Coupling.distance c 0 26 + 1) (List.length path);
  check "starts at src" true (List.hd path = 0);
  check "ends at dst" true (List.nth path (List.length path - 1) = 26);
  let rec adjacent_pairs = function
    | a :: (b :: _ as rest) -> Coupling.connected c a b && adjacent_pairs rest
    | _ -> true
  in
  check "consecutive coupled" true (adjacent_pairs path)

let test_distance_symmetry_triangle () =
  let c = Devices.montreal in
  for _ = 1 to 40 do
    let rng = Mathkit.Rng.create 5 in
    let a = Mathkit.Rng.int rng 27 and b = Mathkit.Rng.int rng 27 and m = Mathkit.Rng.int rng 27 in
    checki "symmetric" (Coupling.distance c a b) (Coupling.distance c b a);
    check "triangle" true
      (Coupling.distance c a b <= Coupling.distance c a m + Coupling.distance c m b)
  done

let test_by_name () =
  checki "montreal" 27 (Coupling.n_qubits (Devices.by_name "montreal" 0));
  checki "linear" 10 (Coupling.n_qubits (Devices.by_name "linear" 10));
  checki "grid side" 25 (Coupling.n_qubits (Devices.by_name "grid" 25));
  checki "ring" 8 (Coupling.n_qubits (Devices.by_name "ring" 8));
  checki "eagle" 127 (Coupling.n_qubits (Devices.by_name "eagle" 0));
  checki "osprey" 433 (Coupling.n_qubits (Devices.by_name "osprey" 0));
  check "unknown raises" true
    (try
       ignore (Devices.by_name "torus" 9);
       false
     with Invalid_argument _ -> true)

(* ---------- IBM heavy-hex lattices (distance-parameterized) ---------- *)

let test_heavy_hex_ibm () =
  (* the published qubit-count formula: n(d) = 10d^2 + 12d + 1 *)
  List.iter
    (fun d ->
      let c = Devices.heavy_hex_ibm ~distance:d in
      checki
        (Printf.sprintf "d=%d qubit count" d)
        ((10 * d * d) + (12 * d) + 1)
        (Coupling.n_qubits c);
      check (Printf.sprintf "d=%d connected" d) true (Coupling.is_connected_graph c);
      let n = Coupling.n_qubits c in
      let max_deg = List.init n (Coupling.degree c) |> List.fold_left max 0 in
      check (Printf.sprintf "d=%d degree <= 3" d) true (max_deg <= 3))
    [ 1; 2; 3; 4 ];
  let eagle = Devices.eagle () in
  checki "eagle qubits" 127 (Coupling.n_qubits eagle);
  checki "eagle edges" 144 (List.length (Coupling.edges eagle));
  let osprey = Devices.osprey () in
  checki "osprey qubits" 433 (Coupling.n_qubits osprey);
  checki "osprey edges" 504 (List.length (Coupling.edges osprey));
  check "invalid distance raises" true
    (try
       ignore (Devices.heavy_hex_ibm ~distance:0);
       false
     with Invalid_argument _ -> true)

(* ---------- lazy distance rows ---------- *)

let test_lazy_distance_rows () =
  (* a freshly built coupling has no BFS rows; queries materialize exactly
     the source rows they touch *)
  let c = Devices.heavy_hex_ibm ~distance:3 in
  checki "fresh coupling: no rows" 0 (Coupling.rows_materialized c);
  let d01 = Coupling.distance c 0 1 in
  check "distance sane" true (d01 >= 1);
  checki "one query: one row" 1 (Coupling.rows_materialized c);
  ignore (Coupling.distance c 0 100);
  checki "same source reuses the row" 1 (Coupling.rows_materialized c);
  ignore (Coupling.distance c 5 0);
  checki "new source adds a row" 2 (Coupling.rows_materialized c);
  (* lazy hops agree with the dense matrix everywhere on a small device *)
  let small = Devices.grid 3 4 in
  let dense = Distmat.hops small and lz = Distmat.hops_lazy small in
  check "lazy matrix not dense" false (Distmat.is_dense lz);
  check "dense matrix is dense" true (Distmat.is_dense dense);
  let n = Coupling.n_qubits small in
  let agree = ref true in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Distmat.get dense a b <> Distmat.get lz a b then agree := false
    done
  done;
  check "lazy = dense hop distances" true !agree;
  checki "all rows materialized after the sweep" n (Distmat.rows_materialized lz);
  check "raw_opt: dense exposes the flat array" true (Distmat.raw_opt dense <> None);
  check "raw_opt: lazy has none" true (Distmat.raw_opt lz = None);
  check "raw on lazy raises" true
    (try
       ignore (Distmat.raw lz);
       false
     with Invalid_argument _ -> true)

(* ---------- calibration ---------- *)

let test_calibration_deterministic () =
  let c = Devices.montreal in
  let a = Calibration.generate ~seed:7 c and b = Calibration.generate ~seed:7 c in
  List.iter
    (fun (x, y) ->
      Alcotest.(check (float 0.0)) "same cx error" (Calibration.cx_error a x y)
        (Calibration.cx_error b x y))
    (Coupling.edges c)

let test_calibration_ranges () =
  let c = Devices.montreal in
  let cal = Calibration.generate c in
  List.iter
    (fun (a, b) ->
      let e = Calibration.cx_error cal a b in
      check "cx error in montreal band" true (e >= 0.005 && e <= 0.025);
      let t = Calibration.cx_time cal a b in
      check "cx time in band" true (t >= 250e-9 && t <= 550e-9))
    (Coupling.edges c);
  for q = 0 to 26 do
    let r = Calibration.readout_error cal q in
    check "readout in band" true (r >= 0.01 && r <= 0.04);
    let s = Calibration.sq_error cal q in
    check "1q error in band" true (s >= 2e-4 && s <= 5e-4)
  done

let test_calibration_uncoupled_raises () =
  let c = Devices.linear 4 in
  let cal = Calibration.generate c in
  check "uncoupled raises" true
    (try
       ignore (Calibration.cx_error cal 0 2);
       false
     with Invalid_argument _ -> true)

let test_noise_distance_matrix () =
  let c = Devices.linear 5 in
  let cal = Calibration.generate c in
  let d = Calibration.noise_distance_matrix cal in
  (* diagonal zero, symmetric, monotone along the line *)
  for i = 0 to 4 do
    Alcotest.(check (float 1e-12)) "diag zero" 0.0 d.(i).(i)
  done;
  check "symmetric" true (Float.abs (d.(0).(3) -. d.(3).(0)) < 1e-12);
  check "monotone" true (d.(0).(1) < d.(0).(2) && d.(0).(2) < d.(0).(4));
  (* with alpha = (0, 0, 1) the matrix reduces to hop counts *)
  let hops = Calibration.noise_distance_matrix ~alpha1:0.0 ~alpha2:0.0 ~alpha3:1.0 cal in
  Alcotest.(check (float 1e-9)) "pure hops" 3.0 hops.(0).(3)

let test_noise_distance_prefers_good_edges () =
  (* a triangle where one 2-hop detour is much cleaner than the direct edge
     could flip preference only if error dominates; with default alphas the
     direct edge (weight ~1 hop) still wins, but ordering must follow edge
     quality for equal hop counts *)
  let c = Coupling.create 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let cal = Calibration.generate ~seed:3 c in
  let d = Calibration.noise_distance_matrix cal in
  let via1 = d.(0).(1) +. d.(1).(3) and via2 = d.(0).(2) +. d.(2).(3) in
  check "path choice reflects errors" true (Float.abs (d.(0).(3) -. Float.min via1 via2) < 1e-9)

let () =
  Alcotest.run "topology"
    [
      ( "coupling",
        [
          Alcotest.test_case "validation" `Quick test_create_validates;
          Alcotest.test_case "linear" `Quick test_linear_structure;
          Alcotest.test_case "grid" `Quick test_grid_structure;
          Alcotest.test_case "montreal" `Quick test_montreal_structure;
          Alcotest.test_case "ring" `Quick test_ring_structure;
          Alcotest.test_case "fully connected" `Quick test_fully_connected;
          Alcotest.test_case "shortest path" `Quick test_shortest_path_properties;
          Alcotest.test_case "distance properties" `Quick test_distance_symmetry_triangle;
          Alcotest.test_case "by name" `Quick test_by_name;
          Alcotest.test_case "heavy-hex ibm" `Quick test_heavy_hex_ibm;
          Alcotest.test_case "lazy distance rows" `Quick test_lazy_distance_rows;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "deterministic" `Quick test_calibration_deterministic;
          Alcotest.test_case "ranges" `Quick test_calibration_ranges;
          Alcotest.test_case "uncoupled raises" `Quick test_calibration_uncoupled_raises;
          Alcotest.test_case "noise distance" `Quick test_noise_distance_matrix;
          Alcotest.test_case "noise distance paths" `Quick test_noise_distance_prefers_good_edges;
        ] );
    ]
