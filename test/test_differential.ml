(* Differential testing of the full transpile pipeline: for random logical
   circuits on every topology family from the paper's evaluation, the
   NASSC-routed and SABRE-routed outputs must both be statevector-equivalent
   to the original circuit (Qsim.Equiv.routed_equal), and equivalent to each
   other's logical semantics by transitivity. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)

(* random 4-6 qubit logical circuits over a gate set that exercises 1q
   optimization, commutation and 2q-block collection *)
let random_circuit seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 10 + Rng.int rng 25 in
  for _ = 1 to len do
    match Rng.int rng 8 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | 4 ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b (Gate.CP (Rng.float rng 3.0)) [ a; c ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* the four topology families of Figure 10, sized to fit 6 logical qubits
   while keeping statevector equivalence cheap *)
let topologies =
  [
    ("linear", Topology.Devices.linear 7);
    ("ring", Topology.Devices.ring 8);
    ("grid", Topology.Devices.grid 2 4);
    ("heavy-hex", Topology.Devices.heavy_hex 2 2);
  ]

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let equivalent_after ~router ~coupling c seed =
  let params = { Qroute.Engine.default_params with seed = 1 + (seed mod 997) } in
  let r = Qroute.Pipeline.transpile ~params ~router coupling c in
  match r.final_layout with
  | None -> false
  | Some fl -> Qsim.Equiv.routed_equal ~logical:c ~routed:r.circuit ~final_layout:fl

(* one qcheck property per (topology, router) pair so a failure names the
   combination that broke *)
let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  List.concat_map
    (fun (tname, coupling) ->
      List.map
        (fun (rname, router) ->
          QCheck.Test.make
            ~name:(Printf.sprintf "differential %s on %s: routed = original" rname tname)
            ~count:8 (QCheck.make gen_seed)
            (fun seed -> equivalent_after ~router ~coupling (random_circuit seed) seed))
        routers)
    topologies

(* ---- metamorphic sweep over the benchmark-matrix families ----

   Every parameterized family that feeds `bench --only matrix`, at <=6
   qubits, through every router of the matrix (including the
   heuristic-aware and hybrid variants): the routed circuit must stay
   statevector-equivalent to the generated logical circuit on every
   topology. *)

let family_circuits =
  [
    ("random-density", fun () -> Qbench.Generators.random_density ~seed:7 ~gates:24 ~density:0.4 5);
    ("qaoa-er", fun () -> Qbench.Generators.qaoa_erdos_renyi ~seed:7 ~p:1 ~edge_prob:0.5 5);
    ("brickwork", fun () -> Qbench.Generators.supremacy_brickwork ~seed:7 ~cycles:4 5);
    ("ghz", fun () -> Qbench.Generators.ghz_chain 5);
    ("ladder", fun () -> Qbench.Generators.cx_ladder ~rounds:2 4);
  ]

let test_matrix_families_equivalent () =
  List.iter
    (fun (fname, build) ->
      let c = build () in
      List.iter
        (fun (tname, coupling) ->
          List.iter
            (fun (rname, router) ->
              check
                (Printf.sprintf "%s/%s/%s preserves semantics" fname rname tname)
                true
                (equivalent_after ~router ~coupling c 11))
            Qbench.Matrix.routers)
        [ ("linear", Topology.Devices.linear 7); ("grid", Topology.Devices.grid 2 4) ])
    family_circuits

(* pinned regression: the same circuit through both routers, both equivalent
   to the source (hence to each other) *)
let test_routers_agree_semantically () =
  let c = random_circuit 2022 in
  List.iter
    (fun (tname, coupling) ->
      List.iter
        (fun (rname, router) ->
          check
            (Printf.sprintf "%s/%s preserves semantics" rname tname)
            true
            (equivalent_after ~router ~coupling c 2022))
        routers)
    topologies

let () =
  Alcotest.run "differential"
    [
      ( "random circuits",
        List.map QCheck_alcotest.to_alcotest qcheck_props
        @ [ Alcotest.test_case "pinned circuit, all combos" `Quick
              test_routers_agree_semantically ] );
      ( "matrix families",
        [
          Alcotest.test_case "all families x all matrix routers" `Quick
            test_matrix_families_equivalent;
        ] );
    ]
