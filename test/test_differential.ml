(* Differential testing of the full transpile pipeline: for random logical
   circuits on every topology family from the paper's evaluation, the
   NASSC-routed and SABRE-routed outputs must both be statevector-equivalent
   to the original circuit (Qsim.Equiv.routed_equal), and equivalent to each
   other's logical semantics by transitivity. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)

(* random 4-6 qubit logical circuits over a gate set that exercises 1q
   optimization, commutation and 2q-block collection *)
let random_circuit seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 10 + Rng.int rng 25 in
  for _ = 1 to len do
    match Rng.int rng 8 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | 4 ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b (Gate.CP (Rng.float rng 3.0)) [ a; c ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* the four topology families of Figure 10, sized to fit 6 logical qubits
   while keeping statevector equivalence cheap *)
let topologies =
  [
    ("linear", Topology.Devices.linear 7);
    ("ring", Topology.Devices.ring 8);
    ("grid", Topology.Devices.grid 2 4);
    ("heavy-hex", Topology.Devices.heavy_hex 2 2);
  ]

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let equivalent_after ~router ~coupling c seed =
  let params = { Qroute.Engine.default_params with seed = 1 + (seed mod 997) } in
  let r = Qroute.Pipeline.transpile ~params ~router coupling c in
  match r.final_layout with
  | None -> false
  | Some fl ->
      let dense =
        Qsim.Equiv.routed_equal ~logical:c ~routed:r.circuit ~final_layout:fl
      in
      (* cross-check the symbolic certifier against the statevector oracle
         on every differential cell: Qverify may abstain (Unknown), but a
         decisive verdict must agree with the dense answer *)
      let agrees =
        match
          Qverify.verify_routed ~original:c ~routed:r.circuit
            ?initial_layout:r.initial_layout ~final_layout:fl ()
        with
        | Qverify.Equivalent _ -> dense
        | Qverify.Not_equivalent _ -> not dense
        | Qverify.Unknown _ -> true
      in
      dense && agrees

(* one qcheck property per (topology, router) pair so a failure names the
   combination that broke *)
let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  List.concat_map
    (fun (tname, coupling) ->
      List.map
        (fun (rname, router) ->
          QCheck.Test.make
            ~name:(Printf.sprintf "differential %s on %s: routed = original" rname tname)
            ~count:8 (QCheck.make gen_seed)
            (fun seed -> equivalent_after ~router ~coupling (random_circuit seed) seed))
        routers)
    topologies

(* ---- single-gate mutations must be flagged Not_equivalent ----

   A decisive mutation: bump one non-quarter RZ angle by 0.5 (the defect
   unitary A RZ(0.5) A^dag is never scalar), or append an RZ(0.5) when the
   routed output happens to carry no such site.  On <=7 wires every residue
   cluster resolves densely, so the certifier must answer Not_equivalent —
   Unknown counts as a miss here. *)

let mutate_decisive st c =
  let n = Circuit.n_qubits c in
  let quarter a =
    let q = a /. (Float.pi /. 2.0) in
    Float.abs (q -. Float.round q) < 1e-6
  in
  let instrs = Array.of_list (Circuit.instrs c) in
  let sites =
    Array.to_list instrs
    |> List.mapi (fun i (it : Circuit.instr) -> (i, it))
    |> List.filter (fun (_, (it : Circuit.instr)) ->
           match it.Circuit.gate with Gate.RZ a -> not (quarter a) | _ -> false)
  in
  match sites with
  | [] ->
      Circuit.concat c
        (Circuit.create n [ { Circuit.gate = Gate.RZ 0.5; qubits = [ 0 ] } ])
  | sites ->
      let i, (it : Circuit.instr) = List.nth sites (Random.State.int st (List.length sites)) in
      let a = match it.Circuit.gate with Gate.RZ a -> a | _ -> 0.0 in
      Circuit.create n
        (Array.to_list
           (Array.mapi
              (fun j (x : Circuit.instr) ->
                if j = i then { x with Circuit.gate = Gate.RZ (a +. 0.5) } else x)
              instrs))

let qcheck_mutation =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  QCheck.Test.make ~name:"single-gate mutation flagged Not_equivalent" ~count:12
    (QCheck.make gen_seed)
    (fun seed ->
      let c = random_circuit seed in
      let coupling = Topology.Devices.linear 7 in
      let params = { Qroute.Engine.default_params with seed = 1 + (seed mod 997) } in
      let r =
        Qroute.Pipeline.transpile ~params ~router:Qroute.Pipeline.Sabre_router
          coupling c
      in
      let bad = mutate_decisive (Random.State.make [| seed |]) r.circuit in
      match
        Qverify.verify_routed ~original:c ~routed:bad
          ?initial_layout:r.initial_layout ?final_layout:r.final_layout ()
      with
      | Qverify.Not_equivalent _ -> true
      | _ -> false)

(* ---- device scale: montreal-27, 100+ gates, symbolic-only ----

   18 logical qubits on the 27-qubit device is far beyond the statevector
   oracle; these cells exist because the symbolic certifier is the only
   equivalence evidence at this size. *)

let test_montreal_sweep () =
  let topo = Topology.Devices.montreal in
  List.iter
    (fun (rname, router) ->
      List.iter
        (fun gates ->
          let c =
            Qbench.Generators.random_density ~seed:(31 + gates) ~gates ~density:0.35 18
          in
          let params = { Qroute.Engine.default_params with seed = 5 } in
          let r = Qroute.Pipeline.transpile ~params ~router topo c in
          let v =
            Qverify.verify_routed ~original:c ~routed:r.circuit
              ?initial_layout:r.initial_layout ?final_layout:r.final_layout ()
          in
          check
            (Printf.sprintf "%s montreal %d-gate circuit certifies" rname gates)
            true
            (match v with Qverify.Equivalent _ -> true | _ -> false))
        [ 120; 200 ])
    routers

(* ---- metamorphic sweep over the benchmark-matrix families ----

   Every parameterized family that feeds `bench --only matrix`, at <=6
   qubits, through every router of the matrix (including the
   heuristic-aware and hybrid variants): the routed circuit must stay
   statevector-equivalent to the generated logical circuit on every
   topology. *)

let family_circuits =
  [
    ("random-density", fun () -> Qbench.Generators.random_density ~seed:7 ~gates:24 ~density:0.4 5);
    ("qaoa-er", fun () -> Qbench.Generators.qaoa_erdos_renyi ~seed:7 ~p:1 ~edge_prob:0.5 5);
    ("brickwork", fun () -> Qbench.Generators.supremacy_brickwork ~seed:7 ~cycles:4 5);
    ("ghz", fun () -> Qbench.Generators.ghz_chain 5);
    ("ladder", fun () -> Qbench.Generators.cx_ladder ~rounds:2 4);
  ]

let test_matrix_families_equivalent () =
  List.iter
    (fun (fname, build) ->
      let c = build () in
      List.iter
        (fun (tname, coupling) ->
          List.iter
            (fun (rname, router) ->
              check
                (Printf.sprintf "%s/%s/%s preserves semantics" fname rname tname)
                true
                (equivalent_after ~router ~coupling c 11))
            Qbench.Matrix.routers)
        [ ("linear", Topology.Devices.linear 7); ("grid", Topology.Devices.grid 2 4) ])
    family_circuits

(* pinned regression: the same circuit through both routers, both equivalent
   to the source (hence to each other) *)
let test_routers_agree_semantically () =
  let c = random_circuit 2022 in
  List.iter
    (fun (tname, coupling) ->
      List.iter
        (fun (rname, router) ->
          check
            (Printf.sprintf "%s/%s preserves semantics" rname tname)
            true
            (equivalent_after ~router ~coupling c 2022))
        routers)
    topologies

let () =
  Alcotest.run "differential"
    [
      ( "random circuits",
        List.map QCheck_alcotest.to_alcotest (qcheck_props @ [ qcheck_mutation ])
        @ [ Alcotest.test_case "pinned circuit, all combos" `Quick
              test_routers_agree_semantically ] );
      ( "device scale",
        [
          Alcotest.test_case "montreal-27 symbolic certification" `Slow
            test_montreal_sweep;
        ] );
      ( "matrix families",
        [
          Alcotest.test_case "all families x all matrix routers" `Quick
            test_matrix_families_equivalent;
        ] );
    ]
